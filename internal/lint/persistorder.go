package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// analyzerPersistOrder encodes the core durability invariant of the
// paper (§2.1, §3.4): a store to persistent memory is durable only
// after its cache lines are written back (FlushRange / Persist /
// Batch.Flush) and ordered by a fence. Within each function body it
// checks two things, in statement order:
//
//  1. every pmem.Device Store/Store8 is eventually covered by a
//     flush-like call before the function returns, and
//  2. no atomic "publish" (a sync/atomic store such as advancing the
//     durable ID) happens between a device store and its first flush —
//     publishing a commit marker before the data is flushed is exactly
//     the bug class that survives testing and only fails under Crash().
//
// The check is intraprocedural; functions that intentionally defer
// durability to their caller (e.g. an undo-log Tx.Store whose flush
// happens at commit) carry a //dudelint:ignore persistorder comment
// with the justification. The pmem package itself — the substrate that
// defines Store and Flush — the blackbox flight recorder (a second
// substrate: Stamp stores a slot that the batched Flush/Sync write back
// later, by design) and test files are exempt.
//
// The sharded Reproduce apply path needs no suppression: an applier
// that stores its address shard and flushes it into the group's shared
// batch satisfies rule 1 (Batch.Flush covers the stores regardless of
// who owns the batch — the owner fences at the join barrier), and rule
// 2 still fires if the applier publishes completion atomically before
// its flushes, which is the crash bug the barrier exists to prevent.
var analyzerPersistOrder = &Analyzer{
	Name: "persistorder",
	Doc:  "pmem stores must be flushed before return and before any atomic publish",
	Run:  runPersistOrder,
}

func runPersistOrder(pass *Pass) {
	if pkg := strings.TrimSuffix(pass.Pkg.Name, "_test"); pkg == "pmem" || pkg == "blackbox" {
		return
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, scope := range funcScopes(f.AST) {
			checkPersistOrderScope(pass, scope)
		}
	}
}

type persistEvent struct {
	pos  token.Pos
	kind int // 0 store, 1 flush, 2 publish
}

func checkPersistOrderScope(pass *Pass, scope funcScope) {
	var events []persistEvent
	walkScope(scope.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isDeviceCall(pass.Pkg, call, "Store", "Store8"):
			events = append(events, persistEvent{call.Pos(), 0})
		case isDeviceCall(pass.Pkg, call, "FlushRange", "Persist") ||
			isBatchCall(pass.Pkg, call, "Flush"):
			events = append(events, persistEvent{call.Pos(), 1})
		case isAtomicPublish(pass.Pkg, call):
			events = append(events, persistEvent{call.Pos(), 2})
		}
		return true
	})
	for _, st := range events {
		if st.kind != 0 {
			continue
		}
		var firstFlush, firstPublish token.Pos
		for _, e := range events {
			if e.pos <= st.pos {
				continue
			}
			switch e.kind {
			case 1:
				if firstFlush == token.NoPos {
					firstFlush = e.pos
				}
			case 2:
				if firstPublish == token.NoPos {
					firstPublish = e.pos
				}
			}
		}
		switch {
		case firstFlush == token.NoPos:
			pass.Reportf(st.pos,
				"store to persistent memory in %s is never covered by a FlushRange/Persist/Batch.Flush before the function returns; it is lost on Crash()",
				scope.name)
		case firstPublish != token.NoPos && firstPublish < firstFlush:
			pub := pass.Pkg.Fset.Position(firstPublish)
			pass.Reportf(st.pos,
				"store to persistent memory in %s is published by an atomic store (line %d) before being flushed; a crash between them breaks the durable-ID invariant",
				scope.name, pub.Line)
		}
	}
}
