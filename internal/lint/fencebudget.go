package lint

import (
	"go/ast"
	"go/token"
	"strconv"
)

// analyzerFenceBudget holds annotated hot paths to a static worst-case
// fence count. The paper's performance argument is fence economy:
// decoupling exists so the critical path pays the minimum number of
// flush+fence barriers (§4), so a fence quietly added to the persist
// worker loop or a stamp path is a performance regression that no test
// fails on. An entry point declares its budget in its doc comment:
//
//	//dudelint:fencebudget 1
//
// and the analyzer evaluates the worst-case number of persist barriers
// (Device.Fence, Batch.Fence, Device.Persist, plus the summarized
// worst case of every statically resolved callee) one activation of
// the function can execute. Branches take the costliest path; a loop
// body counts once, so the budget bounds the barriers per iteration of
// a hot loop — the per-message cost. Calls the analysis cannot resolve
// (interface dispatch, func values, goroutine hand-offs) contribute
// nothing and are the stated boundary of the check; a recursive cycle
// that fences reports as unbounded.
var analyzerFenceBudget = &Analyzer{
	Name: "fencebudget",
	Doc:  "worst-case fences on a //dudelint:fencebudget path must not exceed the budget",
	Run:  runFenceBudget,
}

func runFenceBudget(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	for _, iss := range prog.issues[pass.Pkg] {
		if iss.analyzer == "fencebudget" {
			pass.Reportf(iss.pos, "%s", iss.msg)
		}
	}
	for _, fi := range prog.funcsOf(pass.Pkg) {
		if !fi.HasBudget {
			continue
		}
		worst := fi.Sum.MaxFences
		if worst <= fi.FenceBudget {
			continue
		}
		witness := fenceWitness(prog, pass.Pkg, fi)
		if worst >= fenceInf {
			pass.Reportf(fi.Decl.Name.Pos(),
				"%s exceeds its fence budget of %d: a recursive call cycle fences, so the worst case is unbounded%s",
				fi.Decl.Name.Name, fi.FenceBudget, witness)
			continue
		}
		pass.Reportf(fi.Decl.Name.Pos(),
			"%s exceeds its fence budget: worst-case %d persist barriers per activation, budget %d%s",
			fi.Decl.Name.Name, worst, fi.FenceBudget, witness)
	}
}

// fenceWitness names the costliest fence contributor in fi's body, so
// the diagnostic points at what to remove.
func fenceWitness(prog *Program, pkg *Package, fi *FuncInfo) string {
	bestCount := 0
	var bestPos token.Pos
	bestDesc := ""
	walkScope(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isDeviceCall(pkg, call, "Fence", "Persist") || isBatchCall(pkg, call, "Fence"):
			if bestCount < 1 {
				bestCount = 1
				bestPos = call.Pos()
				_, name := callee(call)
				bestDesc = name
			}
		default:
			if cfi := prog.FuncOf(pkg, call); cfi != nil && cfi.Sum.MaxFences > bestCount {
				bestCount = cfi.Sum.MaxFences
				bestPos = call.Pos()
				bestDesc = "call to " + cfi.Decl.Name.Name
			}
		}
		return true
	})
	if bestDesc == "" {
		return ""
	}
	line := pkg.Fset.Position(bestPos).Line
	return " (heaviest contributor: " + bestDesc + " at line " + strconv.Itoa(line) + ")"
}
