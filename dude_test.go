package dudetm

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dudetm/internal/memdb"
)

func TestPoolBasics(t *testing.T) {
	pool, err := Create(Options{DataSize: 1 << 20, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	tid, err := pool.Update(0, func(tx *Tx) error {
		tx.Store(pool.Root(0), 42)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	pool.WaitDurable(tid)
	if err := pool.View(0, func(tx *Tx) error {
		if v := tx.Load(pool.Root(0)); v != 42 {
			t.Errorf("root = %d", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolSnapshotRecovery(t *testing.T) {
	pool, err := Create(Options{DataSize: 1 << 20, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := uint64(0); i < 30; i++ {
		last, _ = pool.Update(0, func(tx *Tx) error {
			tx.Store(pool.Root(int(i%10)), i+1)
			return nil
		})
	}
	pool.WaitDurable(last)
	pool.Close()
	img := pool.Snapshot()

	pool2, err := OpenSnapshot(img, Options{DataSize: 1 << 20, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	pool2.View(0, func(tx *Tx) error {
		for r := 0; r < 10; r++ {
			want := uint64(20 + r + 1)
			if v := tx.Load(pool2.Root(r)); v != want {
				t.Errorf("root %d = %d, want %d", r, v, want)
			}
		}
		return nil
	})
}

func TestPoolImageFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.img")
	pool, err := Create(Options{DataSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	tid, _ := pool.Update(0, func(tx *Tx) error {
		tx.Store(pool.Root(0), 7)
		return nil
	})
	pool.WaitDurable(tid)
	pool.Close()
	if err := pool.SaveImage(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	pool2, err := OpenImage(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	pool2.View(0, func(tx *Tx) error {
		if v := tx.Load(pool2.Root(0)); v != 7 {
			t.Errorf("root = %d", v)
		}
		return nil
	})
}

func TestPoolCrashLosesUnacknowledged(t *testing.T) {
	pool, err := Create(Options{DataSize: 1 << 20, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Initial durable state.
	tid, _ := pool.Update(0, func(tx *Tx) error {
		tx.Store(pool.Root(0), 1)
		return nil
	})
	pool.WaitDurable(tid)
	// Freeze persistence, then commit more transactions that never
	// become durable.
	pool.PausePersist()
	for i := 0; i < 10; i++ {
		pool.Update(0, func(tx *Tx) error {
			tx.Store(pool.Root(0), 999)
			return nil
		})
	}
	pool.PauseReproduce()  // quiesce the whole pipeline for the snapshot
	img := pool.Snapshot() // crash here
	pool.ResumeReproduce()
	pool.ResumePersist()
	pool.Close()

	pool2, err := OpenSnapshot(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	pool2.View(0, func(tx *Tx) error {
		if v := tx.Load(pool2.Root(0)); v != 1 {
			t.Errorf("root = %d, want last durable value 1", v)
		}
		return nil
	})
}

func TestPoolWithDataStructures(t *testing.T) {
	pool, err := Create(Options{DataSize: 8 << 20, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	var tree memdb.BPlusTree
	if _, err := pool.Update(0, func(tx *Tx) error {
		rootPtr, err := pool.Alloc(tx, 8)
		if err != nil {
			return err
		}
		tx.Store(pool.Root(1), rootPtr)
		tree = memdb.BPlusTree{RootPtr: rootPtr, Heap: pool.Heap()}
		return tree.Format(tx)
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := uint64(w*1000 + i + 1)
				if _, err := pool.Update(w, func(tx *Tx) error {
					return tree.Put(tx, k, k*2)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	pool.Close()

	// Recover from the snapshot and verify every key survived.
	pool2, err := OpenSnapshot(pool.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	pool2.View(0, func(tx *Tx) error {
		rootPtr := tx.Load(pool2.Root(1))
		tr := memdb.BPlusTree{RootPtr: rootPtr, Heap: pool2.Heap()}
		for w := 0; w < 4; w++ {
			for i := 0; i < 200; i++ {
				k := uint64(w*1000 + i + 1)
				if v, ok := tr.Get(tx, k); !ok || v != k*2 {
					t.Fatalf("key %d: %d,%v", k, v, ok)
				}
			}
		}
		return nil
	})
}

func TestRootOutOfRangePanics(t *testing.T) {
	pool, err := Create(Options{DataSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pool.Root(512)
}

// TestPoolWaitDurableCrash races many Pool.WaitDurable callers — some
// for acknowledged IDs, some for IDs that can never become durable —
// against Pool.Crash. Every waiter must unblock: nil when the crash
// frontier covers its ID, ErrCrashed otherwise; and the returned image
// must remount with every acknowledged-durable write intact.
func TestPoolWaitDurableCrash(t *testing.T) {
	pool, err := Create(Options{DataSize: 1 << 20, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := uint64(0); i < 150; i++ {
		tid, err := pool.Update(int(i)%4, func(tx *Tx) error {
			tx.Store(pool.Root(int(i%64)), i+1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		last = tid
	}

	const waiters = 64
	errs := make([]error, waiters)
	tids := make([]uint64, waiters)
	var wg, started sync.WaitGroup
	for w := 0; w < waiters; w++ {
		tid := last
		if w%2 == 1 {
			tid = last + 1 + uint64(w) // never assigned
		}
		tids[w] = tid
		wg.Add(1)
		started.Add(1)
		go func(w int, tid uint64) {
			defer wg.Done()
			started.Done()
			errs[w] = pool.WaitDurable(tid)
		}(w, tid)
	}
	started.Wait()
	img := pool.Crash()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Pool.WaitDurable hung across Crash")
	}
	frontier := pool.Durable()
	for w := range errs {
		if tids[w] <= frontier && errs[w] != nil {
			t.Errorf("waiter %d (tid %d): unexpected error %v", w, tids[w], errs[w])
		}
		if tids[w] > frontier && !errors.Is(errs[w], ErrCrashed) {
			t.Errorf("waiter %d (tid %d > frontier %d): got %v, want ErrCrashed", w, tids[w], frontier, errs[w])
		}
	}

	pool2, err := OpenSnapshot(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	if pool2.Durable() < frontier {
		t.Fatalf("recovered durable %d < crash frontier %d", pool2.Durable(), frontier)
	}
}
