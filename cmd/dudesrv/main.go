// dudesrv serves the durable key-value store over TCP.
//
// The pool lives in simulated NVM; -image names the pool image file.
// If it exists the server mounts it with crash recovery (so a kill -9
// followed by a restart preserves every write acknowledged durable); on
// graceful shutdown (SIGINT/SIGTERM) the server drains connections,
// waits for the durable frontier, and writes the image back.
//
// With -metrics the server also serves a live observability endpoint:
// Prometheus text on /metrics, lifecycle traces on /debug/trace, the
// last watchdog stall report on /debug/stall, and pprof profiles under
// /debug/pprof/. `dudectl top` renders it as a live pipeline view.
//
// Usage:
//
//	dudesrv -addr :7070 -image /tmp/dude.img -group 64 -metrics 127.0.0.1:7071
//
// A quick smoke run, with the bundled load generator:
//
//	go run ./cmd/dudesrv -addr 127.0.0.1:7070 -image /tmp/dude.img &
//	go run ./examples/netbank -addr 127.0.0.1:7070
//
// Replication: a primary ships every sealed persist group to peer
// dudesrv nodes running in replica mode and gates client durability
// acks on a quorum of replica acknowledgments. A replica serves its
// replication address plus read-only client traffic; to take over
// after a primary failure, restart the replica with the same image
// and no -replica flag. Three-node quick start (see README):
//
//	dudesrv -addr :7170 -replica :7180 -image r1.img &
//	dudesrv -addr :7270 -replica :7280 -image r2.img &
//	dudesrv -addr :7070 -image pri.img -peers 127.0.0.1:7180,127.0.0.1:7280 -repl-quorum 2
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dudetm"
	"dudetm/internal/repl"
	"dudetm/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "TCP listen address")
		image     = flag.String("image", "", "pool image file (mounted if present, written on shutdown; empty = volatile run)")
		dataMiB   = flag.Int("data", 64, "persistent data region size in MiB (fresh pools)")
		threads   = flag.Int("threads", 4, "pool execution slots (fresh pools)")
		group     = flag.Int("group", 64, "transactions per persist group (group commit width)")
		sync      = flag.Bool("sync", false, "synchronous durability (one fence per transaction; defeats group commit)")
		maxConns  = flag.Int("max-conns", 64, "concurrent connection cap (excess dialers queue)")
		drainTime = flag.Duration("drain", 30*time.Second, "graceful-shutdown connection drain timeout")
		metrics   = flag.String("metrics", "", "HTTP observability listen address serving /metrics, /debug/trace and /debug/pprof/ (empty = disabled)")
		traceN    = flag.Int("trace-sample", 64, "trace the lifecycle of every N-th transaction (0 = off)")
		watchdog  = flag.Duration("watchdog", time.Second, "pipeline stall watchdog sampling interval (0 = off)")

		replica  = flag.String("replica", "", "replication listen address: run as a replica ingesting a primary's persist log (client port becomes read-only)")
		peers    = flag.String("peers", "", "comma-separated replica replication addresses to ship the persist log to")
		quorum   = flag.Int("repl-quorum", 0, "replica acks required before client writes are acknowledged durable (0 = all peers)")
		degraded = flag.String("repl-degraded", "fail", "when the ack quorum is lost: 'fail' (durability waits error) or 'local' (fall back to local-only acks)")
	)
	flag.Parse()

	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}
	if *replica != "" && len(peerList) > 0 {
		log.Fatal("dudesrv: -replica and -peers are mutually exclusive (a node is a primary or a replica, not both)")
	}
	switch *degraded {
	case "fail", "local":
	default:
		log.Fatalf("dudesrv: -repl-degraded %q: want 'fail' or 'local'", *degraded)
	}

	opts := dudetm.Options{
		DataSize:         uint64(*dataMiB) << 20,
		Threads:          *threads,
		GroupSize:        *group,
		Sync:             *sync,
		TraceSampleEvery: *traceN,
		Watchdog:         *watchdog,
		ReplFactor:       len(peerList),
		ReplQuorum:       *quorum,
		ReplDegradeLocal: *degraded == "local",
	}
	var pool *dudetm.Pool
	var err error
	if *image != "" {
		if _, statErr := os.Stat(*image); statErr == nil {
			pool, err = dudetm.OpenImage(*image, opts)
			if err != nil {
				log.Fatalf("dudesrv: mounting %s: %v", *image, err)
			}
			rec := pool.Stats().Recovery
			log.Printf("dudesrv: recovered %s (durable id %d): scanned %d logs in %s, replayed %d groups / %d entries / %d bytes in %s, recycle %s",
				*image, pool.Durable(), rec.LogsScanned, time.Duration(rec.ScanNanos),
				rec.GroupsReplayed, rec.EntriesReplayed, rec.BytesReplayed,
				time.Duration(rec.ReplayNanos), time.Duration(rec.RecycleNanos))
			if r := rec.Report; r != nil {
				log.Printf("dudesrv: crash report: last durable stamp %d, %d sealed-unpersisted group(s), %d in-flight fence(s), %d torn recorder slot(s), %d torn log(s)",
					r.LastDurableStamp, len(r.SealedUnpersisted), len(r.InFlightFences),
					r.TornBlackboxSlots, r.TornLogs)
			}
		}
	}
	if pool == nil {
		pool, err = dudetm.Create(opts)
		if err != nil {
			log.Fatalf("dudesrv: creating pool: %v", err)
		}
		log.Printf("dudesrv: fresh pool (%d MiB, group %d)", *dataMiB, *group)
	}

	srv, err := server.New(pool, server.Config{MaxConns: *maxConns, ReadOnly: *replica != ""})
	if err != nil {
		log.Fatalf("dudesrv: %v", err)
	}

	// Replica mode: ingest a primary's persist-log stream. The sender
	// reconnects with backoff and the handshake re-acks the local
	// frontier, so a replica restarted on its image catches up from
	// where it left off.
	var rcv *repl.Receiver
	var rln net.Listener
	if *replica != "" {
		rln, err = net.Listen("tcp", *replica)
		if err != nil {
			log.Fatalf("dudesrv: replication listener: %v", err)
		}
		rcv = repl.NewReceiver(pool)
		go func() {
			if err := rcv.Serve(rln); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("dudesrv: replication: %v", err)
			}
		}()
		log.Printf("dudesrv: replica mode: ingesting replication on %s (client port is read-only)", rln.Addr())
	}

	// Primary with peers: ship each sealed group, gate acks on the quorum.
	var snd *repl.Sender
	if len(peerList) > 0 {
		snd = repl.NewSender(pool, repl.Config{Peers: peerList, Epoch: pool.Durable(), Compress: true})
		if err := pool.EnableReplication(snd, snd.PeerNames()); err != nil {
			log.Fatalf("dudesrv: enabling replication: %v", err)
		}
		snd.Start()
		srv.SetReplication(snd)
		q := *quorum
		if q == 0 {
			q = len(peerList)
		}
		log.Printf("dudesrv: replicating to %d peer(s), quorum %d, on quorum loss: %s", len(peerList), q, *degraded)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("dudesrv: %v", err)
	}
	log.Printf("dudesrv: listening on %s", ln.Addr())

	var msrv *http.Server
	if *metrics != "" {
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatalf("dudesrv: metrics listener: %v", err)
		}
		msrv = &http.Server{Handler: srv.DebugHandler()}
		go func() {
			if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				log.Printf("dudesrv: metrics: %v", err)
			}
		}()
		log.Printf("dudesrv: metrics on http://%s/metrics", mln.Addr())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		log.Printf("dudesrv: %s: draining", sig)
		if err := srv.Shutdown(*drainTime); err != nil {
			log.Printf("dudesrv: drain: %v", err)
		}
	}()

	if err := srv.Serve(ln); err != nil {
		log.Fatalf("dudesrv: serve: %v", err)
	}

	// Serve returned: the drain is complete. Quiesce the pool and write
	// the image so the next start recovers every acknowledged write.
	// Replication teardown first — ingest and shipping must never race
	// the pool close.
	if rcv != nil {
		rln.Close()
		rcv.Shutdown()
		log.Printf("dudesrv: replication ingest stopped at durable id %d", pool.Durable())
	}
	if snd != nil {
		snd.Close()
	}
	if msrv != nil {
		msrv.Close()
	}
	st := srv.Stats()
	pst := pool.Stats()
	pool.Close()
	if *image != "" {
		if err := pool.SaveImage(*image); err != nil {
			log.Fatalf("dudesrv: saving %s: %v", *image, err)
		}
		log.Printf("dudesrv: image saved to %s (durable id %d)", *image, pool.Durable())
	}
	fmt.Printf("dudesrv: served %d conns, %d requests, %d durable writes acked; %d persist fences (%.1f acks/fence); notifier: %d wakeups released %d waiters (max batch %d)\n",
		st.Conns, st.Requests, st.AckedWrites, pst.Device.Fences,
		acksPerFence(st.AckedWrites, pst.Device.Fences),
		st.Notifier.Wakeups, st.Notifier.Released, st.Notifier.MaxBatch)
}

func acksPerFence(acks, fences uint64) float64 {
	if fences == 0 {
		return 0
	}
	return float64(acks) / float64(fences)
}
