// Command dudebench regenerates every table and figure of the DudeTM
// paper's evaluation (§5) on the simulated-NVM substrate.
//
// Usage:
//
//	dudebench [-experiment all|fig2|table1|table2|table3|fig3|fig4|fig5|table4|recovery|repl|pipeline|loadcurve|critpath|smoke]
//	          [-threads N] [-maxthreads N] [-quick] [-json] [-list]
//	          [-loadcurve-out FILE] [-loadcurve-points N] [-critpath-out FILE]
//
// With -json, the human-readable tables are suppressed and every
// measured run is emitted to stdout as one JSON document with stable
// key order ({"records": [...]}), for scripted comparison across
// commits; progress messages move to stderr.
//
// Absolute numbers depend on the host; the shapes (which system wins,
// by roughly what factor, where crossovers fall) are the reproduction
// target. See EXPERIMENTS.md for recorded paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"dudetm/internal/harness"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	threads := flag.Int("threads", 2, "Perform threads (the paper uses 4 on a 12-core host)")
	maxThreads := flag.Int("maxthreads", 4, "largest thread count in the Figure 5 sweep")
	quick := flag.Bool("quick", false, "divide per-run transaction counts by 10")
	jsonOut := flag.Bool("json", false, "emit machine-readable results on stdout instead of tables")
	lcOut := flag.String("loadcurve-out", "", "write the loadcurve experiment's report JSON to this path")
	lcPoints := flag.Int("loadcurve-points", 0, "offered-load points in the loadcurve sweep (default 5, min 2)")
	cpOut := flag.String("critpath-out", "", "write the critpath experiment's report JSON to this path")
	list := flag.Bool("list", false, "list the registered experiments with one-line descriptions and exit")
	flag.Parse()

	progress := io.Writer(os.Stdout)
	cfg := harness.ExpConfig{Threads: *threads, Quick: *quick, Out: os.Stdout}
	if *jsonOut {
		harness.StartRecording()
		cfg.Out = io.Discard
		progress = os.Stderr
	}

	type exp struct {
		name string
		desc string
		run  func() error
	}
	// Declaration order is the run order of -experiment all and the
	// (stable) output order of -list; scripts key off both.
	exps := []exp{
		{"fig2", "single-thread latency breakdown of one durable transaction (paper Fig. 2)", func() error { return harness.Fig2(cfg) }},
		{"table1", "baseline STM vs durable-transaction throughput (paper Table 1)", func() error { return harness.Table1(cfg) }},
		{"table2", "read/write-mix throughput across systems (paper Table 2)", func() error { return harness.Table2(cfg) }},
		{"table3", "transaction-size sensitivity (paper Table 3)", func() error { return harness.Table3(cfg) }},
		{"fig3", "throughput vs NVM write latency (paper Fig. 3)", func() error { return harness.Fig3(cfg) }},
		{"fig4", "decoupled pipeline vs synchronous persist under load (paper Fig. 4)", func() error { return harness.Fig4(cfg) }},
		{"fig5", "thread-count scaling sweep (paper Fig. 5)", func() error { return harness.Fig5(cfg, *maxThreads) }},
		{"table4", "log-size and group-commit sensitivity (paper Table 4)", func() error { return harness.Table4(cfg) }},
		{"recovery", "crash-recovery replay throughput and correctness drill", func() error { return harness.Recovery(cfg) }},
		{"repl", "replicated durability: ship, quorum ack, failover", func() error { return harness.Repl(cfg) }},
		{"pipeline", "per-stage utilization and backlog under steady load", func() error { return harness.Pipeline(cfg) }},
		{"loadcurve", "open-loop latency-vs-offered-load sweep with SLO gate (BENCH_loadcurve.json)", func() error {
			return harness.LoadCurve(cfg, harness.LoadCurveOpts{OutPath: *lcOut, Points: *lcPoints})
		}},
		{"critpath", "critical-path decomposition at knee-relative loads (BENCH_critpath.json)", func() error {
			return harness.Critpath(cfg, harness.CritpathOpts{OutPath: *cpOut})
		}},
		{"smoke", "fast end-to-end sanity pass over the pipeline", func() error { return harness.Smoke(cfg) }},
	}
	if *list {
		for _, e := range exps {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}
	fmt.Fprintf(progress, "dudebench: %d threads on %d CPUs, quick=%v\n\n",
		*threads, runtime.NumCPU(), *quick)
	ran := false
	for _, e := range exps {
		if *experiment != "all" && *experiment != e.name {
			continue
		}
		ran = true
		harness.SetExperiment(e.name)
		start := time.Now()
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "dudebench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Fprintf(progress, "[%s done in %v]\n\n", e.name, time.Since(start).Round(time.Second))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "dudebench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	if *jsonOut {
		if err := harness.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "dudebench: writing JSON: %v\n", err)
			os.Exit(1)
		}
	}
}
