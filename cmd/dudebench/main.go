// Command dudebench regenerates every table and figure of the DudeTM
// paper's evaluation (§5) on the simulated-NVM substrate.
//
// Usage:
//
//	dudebench [-experiment all|fig2|table1|table2|table3|fig3|fig4|fig5|table4|recovery|repl|pipeline|loadcurve|smoke]
//	          [-threads N] [-maxthreads N] [-quick] [-json]
//	          [-loadcurve-out FILE] [-loadcurve-points N]
//
// With -json, the human-readable tables are suppressed and every
// measured run is emitted to stdout as one JSON document with stable
// key order ({"records": [...]}), for scripted comparison across
// commits; progress messages move to stderr.
//
// Absolute numbers depend on the host; the shapes (which system wins,
// by roughly what factor, where crossovers fall) are the reproduction
// target. See EXPERIMENTS.md for recorded paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"dudetm/internal/harness"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	threads := flag.Int("threads", 2, "Perform threads (the paper uses 4 on a 12-core host)")
	maxThreads := flag.Int("maxthreads", 4, "largest thread count in the Figure 5 sweep")
	quick := flag.Bool("quick", false, "divide per-run transaction counts by 10")
	jsonOut := flag.Bool("json", false, "emit machine-readable results on stdout instead of tables")
	lcOut := flag.String("loadcurve-out", "", "write the loadcurve experiment's report JSON to this path")
	lcPoints := flag.Int("loadcurve-points", 0, "offered-load points in the loadcurve sweep (default 5, min 2)")
	flag.Parse()

	progress := io.Writer(os.Stdout)
	cfg := harness.ExpConfig{Threads: *threads, Quick: *quick, Out: os.Stdout}
	if *jsonOut {
		harness.StartRecording()
		cfg.Out = io.Discard
		progress = os.Stderr
	}
	fmt.Fprintf(progress, "dudebench: %d threads on %d CPUs, quick=%v\n\n",
		*threads, runtime.NumCPU(), *quick)

	type exp struct {
		name string
		run  func() error
	}
	exps := []exp{
		{"fig2", func() error { return harness.Fig2(cfg) }},
		{"table1", func() error { return harness.Table1(cfg) }},
		{"table2", func() error { return harness.Table2(cfg) }},
		{"table3", func() error { return harness.Table3(cfg) }},
		{"fig3", func() error { return harness.Fig3(cfg) }},
		{"fig4", func() error { return harness.Fig4(cfg) }},
		{"fig5", func() error { return harness.Fig5(cfg, *maxThreads) }},
		{"table4", func() error { return harness.Table4(cfg) }},
		{"recovery", func() error { return harness.Recovery(cfg) }},
		{"repl", func() error { return harness.Repl(cfg) }},
		{"pipeline", func() error { return harness.Pipeline(cfg) }},
		{"loadcurve", func() error {
			return harness.LoadCurve(cfg, harness.LoadCurveOpts{OutPath: *lcOut, Points: *lcPoints})
		}},
		{"smoke", func() error { return harness.Smoke(cfg) }},
	}
	ran := false
	for _, e := range exps {
		if *experiment != "all" && *experiment != e.name {
			continue
		}
		ran = true
		harness.SetExperiment(e.name)
		start := time.Now()
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "dudebench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Fprintf(progress, "[%s done in %v]\n\n", e.name, time.Since(start).Round(time.Second))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "dudebench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	if *jsonOut {
		if err := harness.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "dudebench: writing JSON: %v\n", err)
			os.Exit(1)
		}
	}
}
