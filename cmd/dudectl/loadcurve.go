package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"
	"time"

	"dudetm/internal/harness"
)

// runLoadCurve renders a BENCH_loadcurve.json report (written by
// `dudebench -experiment loadcurve -loadcurve-out`) as the
// latency-vs-offered-load table with the knee and SLO verdict; with
// -check it validates the artifact instead: at least two points, every
// series present and finite, the knee consistent, and exits non-zero
// otherwise — the CI gate against a silently empty or truncated curve.
func runLoadCurve(args []string) {
	fs := flag.NewFlagSet("loadcurve", flag.ExitOnError)
	check := fs.Bool("check", false, "validate the report instead of rendering it")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dudectl loadcurve [-check] <BENCH_loadcurve.json>")
		os.Exit(2)
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var rep harness.LoadCurveReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}

	if *check {
		if problems := checkLoadCurve(rep); len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "dudectl loadcurve: %s: %s\n", path, p)
			}
			os.Exit(1)
		}
		fmt.Printf("dudectl loadcurve: %s healthy (%d points, knee at index %d, slo_pass=%v)\n",
			path, len(rep.Points), rep.KneeIndex, rep.SLOPass)
		return
	}

	fmt.Printf("load curve — %s (capacity %.0f/s)\n", path, rep.CapacityTPS)
	tw := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "offered/s\tserved/s\tshortfall\tp50\tp99\tp999\tskew p99\tutil P/R\tqueue P/R\tlag D/R\tstalls\t")
	for _, p := range rep.Points {
		mark := ""
		if p.AtKnee {
			mark = "  <- knee"
		}
		fmt.Fprintf(tw, "%.0f\t%.0f\t%.1f%%\t%v\t%v\t%v\t%v\t%.2f/%.2f\t%.0f/%.0f\t%.0f/%.0f\t%d%s\t\n",
			p.OfferedTPS, p.ServedTPS, 100*p.Shortfall,
			time.Duration(p.P50NS).Round(time.Microsecond),
			time.Duration(p.P99NS).Round(time.Microsecond),
			time.Duration(p.P999NS).Round(time.Microsecond),
			time.Duration(p.SkewP99NS).Round(time.Microsecond),
			p.PersistUtil, p.ReproUtil, p.PersistQueue, p.ReproQueue,
			p.DurableLag, p.ReproducedLag, p.Stalls, mark)
	}
	tw.Flush()
	if rep.KneeIndex >= 0 && rep.KneeIndex < len(rep.Points) {
		fmt.Printf("knee: %.0f/s offered (%.0f%% of capacity)\n",
			rep.KneeOfferedTPS, 100*rep.KneeOfferedTPS/rep.CapacityTPS)
	} else {
		fmt.Println("knee: none — every point is past saturation")
	}
	verdict := "PASS"
	if !rep.SLOPass {
		verdict = "FAIL"
	}
	fmt.Printf("slo: %s — p99 <= %v at %.0f/s offered, shortfall <= %.0f%% below the knee\n",
		verdict, time.Duration(rep.SLOMaxP99NS), rep.SLOAtOffered, 100*rep.SLOShortfall)
	for _, v := range rep.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
	if !rep.SLOPass {
		os.Exit(1)
	}
}

// checkLoadCurve validates the report's shape: enough points to show a
// curve, every series present (a missing JSON key decodes to zero, which
// the invariants below reject) and finite, and knee metadata consistent
// with the points.
func checkLoadCurve(rep harness.LoadCurveReport) []string {
	var problems []string
	bad := func(format string, args ...interface{}) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	if rep.Experiment != "loadcurve" {
		bad("experiment = %q, want \"loadcurve\"", rep.Experiment)
	}
	if len(rep.Points) < 2 {
		bad("%d points, want >= 2 (a curve needs both sides of the knee)", len(rep.Points))
	}
	if !finitePos(rep.CapacityTPS) {
		bad("capacity_tps = %v, want finite > 0", rep.CapacityTPS)
	}
	if rep.SLOMaxP99NS <= 0 || !finitePos(rep.SLOAtOffered) || !finitePos(rep.SLOShortfall) {
		bad("slo fields missing or non-finite (max_p99_ns=%d at_offered=%v max_shortfall=%v)",
			rep.SLOMaxP99NS, rep.SLOAtOffered, rep.SLOShortfall)
	}
	if rep.KneeIndex < -1 || rep.KneeIndex >= len(rep.Points) {
		bad("knee_index %d out of range for %d points", rep.KneeIndex, len(rep.Points))
	}
	if rep.KneeIndex >= 0 && rep.KneeIndex < len(rep.Points) {
		if !rep.Points[rep.KneeIndex].AtKnee {
			bad("knee_index %d not marked at_knee in points", rep.KneeIndex)
		}
		if !finitePos(rep.KneeOfferedTPS) {
			bad("knee_offered_tps = %v, want finite > 0", rep.KneeOfferedTPS)
		}
	}
	if rep.SLOPass != (len(rep.Violations) == 0) {
		bad("slo_pass=%v inconsistent with %d violations", rep.SLOPass, len(rep.Violations))
	}
	prevOffered := 0.0
	for i, p := range rep.Points {
		at := func(format string, args ...interface{}) {
			bad("point %d: %s", i, fmt.Sprintf(format, args...))
		}
		if p.Process == "" {
			at("process missing")
		}
		if !finitePos(p.OfferedTPS) {
			at("offered_tps = %v, want finite > 0", p.OfferedTPS)
		}
		if p.OfferedTPS <= prevOffered {
			at("offered_tps %v not increasing past %v", p.OfferedTPS, prevOffered)
		}
		prevOffered = p.OfferedTPS
		if !finite(p.ServedTPS) || p.ServedTPS < 0 {
			at("served_tps = %v, want finite >= 0", p.ServedTPS)
		}
		if !finite(p.Shortfall) || p.Shortfall < 0 || p.Shortfall > 1 {
			at("shortfall = %v, want in [0,1]", p.Shortfall)
		}
		if p.P50NS <= 0 || p.P99NS < p.P50NS || p.P999NS < p.P99NS {
			at("latency quantiles missing or unordered (p50=%d p99=%d p999=%d)", p.P50NS, p.P99NS, p.P999NS)
		}
		if p.SkewP50NS < 0 || p.SkewP99NS < p.SkewP50NS {
			at("skew quantiles unordered (p50=%d p99=%d)", p.SkewP50NS, p.SkewP99NS)
		}
		for _, g := range []struct {
			name string
			v    float64
		}{
			{"persist_util", p.PersistUtil}, {"repro_util", p.ReproUtil},
			{"persist_queue", p.PersistQueue}, {"repro_queue", p.ReproQueue},
			{"durable_lag", p.DurableLag}, {"reproduced_lag", p.ReproducedLag},
		} {
			if !finite(g.v) || g.v < 0 {
				at("%s = %v, want finite >= 0", g.name, g.v)
			}
		}
	}
	// The curve must span the knee: at least one point on each side, or
	// the sweep never demonstrated saturation.
	if rep.KneeIndex >= 0 && rep.KneeIndex == len(rep.Points)-1 && len(rep.Points) >= 2 {
		bad("knee at the last point — the sweep never pushed past saturation")
	}
	return problems
}

func finite(v float64) bool    { return !math.IsNaN(v) && !math.IsInf(v, 0) }
func finitePos(v float64) bool { return finite(v) && v > 0 }
