package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dudetm/internal/dudetm"
	"dudetm/internal/obs"
	"dudetm/internal/pmem"
)

// runForensics implements `dudectl forensics [-json] [-verify] <image>`:
// decode the flight-recorder ring and log-region state of a crash image
// into a CrashReport, without mutating the image.
func runForensics(args []string) {
	fs := flag.NewFlagSet("forensics", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the crash report as JSON")
	asChrome := fs.Bool("chrome", false, "emit the flight-recorder tail as Chrome trace-event JSON (load in Perfetto)")
	verify := fs.Bool("verify", false, "also recover a scratch copy and check the report's frontier against it")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dudectl forensics [-json] [-chrome] [-verify] <image>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	img, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	dev := pmem.New(pmem.Config{Size: uint64(len(img))})
	dev.Restore(img)
	rep, err := dudetm.Forensics(dev)
	if err != nil {
		fatal(err)
	}

	if *verify {
		// Recover a scratch copy (the on-disk image is untouched) and
		// cross-check the forensic frontier against the live system.
		scratch := pmem.New(pmem.Config{Size: uint64(len(img))})
		scratch.Restore(img)
		sys, rerr := dudetm.Recover(scratch, dudetm.Config{Threads: 1})
		if rerr != nil {
			fatal(fmt.Errorf("verify: %w", rerr))
		}
		durable := sys.Durable()
		sys.Close()
		if durable != rep.LogFrontier {
			fatal(fmt.Errorf("verify: recovered durable frontier %d != report frontier %d", durable, rep.LogFrontier))
		}
		fmt.Fprintf(os.Stderr, "verify: recovered durable frontier %d matches the report\n", durable)
	}

	if *asChrome {
		if err := obs.WriteChromeEvents(os.Stdout, forensicsChromeEvents(rep)); err != nil {
			fatal(err)
		}
		return
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Println(rep.String())
}

// forensicsChromeEvents maps the flight-recorder tail onto one Perfetto
// lane. Recorder stamps carry real wall-clock nanoseconds; the timeline
// is rebased to its first event so it reads as elapsed time before the
// crash.
func forensicsChromeEvents(rep *dudetm.CrashReport) []obs.ChromeEvent {
	events := []obs.ChromeEvent{
		{Name: "process_name", Ph: "M", Pid: 1, Args: map[string]any{"name": "dudesrv (crashed)"}},
		{Name: "thread_name", Ph: "M", Pid: 1, Tid: 1, Args: map[string]any{"name": "flight-recorder"}},
	}
	if len(rep.Events) == 0 {
		return events
	}
	base := rep.Events[0].At
	for _, e := range rep.Events {
		events = append(events, obs.ChromeEvent{
			Name: e.Kind,
			Ph:   "i",
			Ts:   float64(e.At-base) / 1e3,
			Pid:  1,
			Tid:  1,
			S:    "t",
			Args: map[string]any{"seq": e.Seq, "a": e.A, "b": e.B, "c": e.C},
		})
	}
	return events
}
