// Command dudectl inspects and recovers DudeTM pool images (raw
// simulated-NVM snapshots written by Pool.SaveImage or the examples),
// and runs the repository's static-analysis suite.
//
// Usage:
//
//	dudectl inspect <image>     show pool geometry, log state, frontier
//	dudectl recover <image>     replay logs, write the recovered image back
//	dudectl forensics <image>   decode the flight recorder into a crash report (-json, -verify)
//	dudectl lint [dirs]         run the dudelint analyzers (default: whole module)
//	dudectl top [flags]         live pipeline view from a dudesrv -metrics endpoint
//	dudectl critpath [flags]    rank critical-path segments from a dudesrv -metrics endpoint
//	dudectl loadcurve [flags] <report.json>   render or -check a BENCH_loadcurve.json
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"dudetm/internal/dudetm"
	"dudetm/internal/lint"
	"dudetm/internal/pmem"
)

func main() {
	if len(os.Args) >= 2 && os.Args[1] == "lint" {
		runLint(os.Args[2:])
		return
	}
	if len(os.Args) >= 2 && os.Args[1] == "top" {
		runTop(os.Args[2:])
		return
	}
	if len(os.Args) >= 2 && os.Args[1] == "critpath" {
		runCritpath(os.Args[2:])
		return
	}
	if len(os.Args) >= 2 && os.Args[1] == "loadcurve" {
		runLoadCurve(os.Args[2:])
		return
	}
	if len(os.Args) >= 2 && os.Args[1] == "forensics" {
		runForensics(os.Args[2:])
		return
	}
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: dudectl inspect|recover|forensics <image> | dudectl lint [dirs] | dudectl top [flags] | dudectl critpath [flags] | dudectl loadcurve [-check] <report.json>")
		os.Exit(2)
	}
	cmd, path := os.Args[1], os.Args[2]
	img, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	dev := pmem.New(pmem.Config{Size: uint64(len(img))})
	dev.Restore(img)

	switch cmd {
	case "inspect":
		info, err := dudetm.Inspect(dev)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pool: %d logs x %d KiB, data %d MiB, page %d B\n",
			info.NLogs, info.LogSize>>10, info.DataSize>>20, info.PageSize)
		fmt.Printf("replay anchor: tid %d, durable frontier: tid %d\n",
			info.Anchor, info.Frontier)
		for i, lg := range info.Logs {
			if lg.LiveGroups == 0 {
				fmt.Printf("log %d: empty (next seq %d, reproTid %d)\n", i, lg.NextSeq, lg.ReproTid)
				continue
			}
			fmt.Printf("log %d: %d live groups, %d entries, tids %d-%d (next seq %d)\n",
				i, lg.LiveGroups, lg.LiveEntries, lg.MinTid, lg.MaxTid, lg.NextSeq)
		}
	case "recover":
		sys, err := dudetm.Recover(dev, dudetm.Config{Threads: 1})
		if err != nil {
			fatal(err)
		}
		frontier := sys.Durable()
		sys.Close()
		out := dev.PersistedImage()
		if err := os.WriteFile(path, out, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("recovered to durable frontier tid %d; image rewritten\n", frontier)
	default:
		fmt.Fprintf(os.Stderr, "dudectl: unknown command %q\n", cmd)
		os.Exit(2)
	}
}

// runLint shells into the same runner as cmd/dudelint, so the suite is
// reachable from the operator tool.
func runLint(args []string) {
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	var res *lint.Result
	if len(args) == 0 || (len(args) == 1 && (args[0] == "./..." || args[0] == "...")) {
		res, err = lint.RunModule(root, nil)
	} else {
		dirs := make([]string, 0, len(args))
		for _, a := range args {
			d, aerr := filepath.Abs(a)
			if aerr != nil {
				fatal(aerr)
			}
			dirs = append(dirs, d)
		}
		res, err = lint.Run(root, dirs, nil)
	}
	if err != nil {
		fatal(err)
	}
	for _, d := range res.Diags {
		fmt.Println(d)
	}
	fmt.Printf("dudelint: %d diagnostic(s), %d suppressed\n", len(res.Diags), res.Suppressed)
	if len(res.Diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dudectl:", err)
	os.Exit(1)
}
