package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"dudetm/internal/obs"
)

// requiredSeries is the -check contract: a healthy dudesrv metrics
// endpoint exposes every one of these with a finite value. It mirrors
// the list asserted by the server's own endpoint test.
var requiredSeries = []string{
	"dudetm_clock_tid",
	"dudetm_durable_tid",
	"dudetm_reproduced_tid",
	`dudetm_stage_utilization{stage="persist"}`,
	`dudetm_stage_utilization{stage="reproduce"}`,
	`dudetm_stage_queue_depth{stage="persist"}`,
	`dudetm_stage_queue_depth{stage="reproduce"}`,
	"dudetm_commit_durable_seconds_count",
	"dudetm_commit_durable_seconds_sum",
	`dudetm_commit_durable_latency_seconds{quantile="0.5"}`,
	`dudetm_commit_durable_latency_seconds{quantile="0.99"}`,
	`dudetm_commit_durable_latency_seconds{quantile="0.999"}`,
	"dudetm_repro_epochs_total",
	"dudetm_repro_epoch_entries_in_total",
	"dudetm_repro_epoch_entries_out_total",
	"dudetm_repro_epoch_coalesce_ratio",
	"dudetm_repro_epoch_groups_count",
	"dudetm_repro_lines_flushed_total",
	"dudetm_critpath_txns_total",
	"dudetm_critpath_incomplete_total",
	"dudetm_critpath_dropped_total",
	"dudetm_critpath_e2e_seconds_count",
	"dudetm_critpath_e2e_seconds_sum",
	`dudetm_critpath_segment_seconds_total{segment="ring_dwell"}`,
	`dudetm_critpath_segment_seconds_total{segment="seal_wait"}`,
	`dudetm_critpath_segment_seconds_total{segment="persist_fence"}`,
	`dudetm_critpath_segment_seconds_total{segment="repl_ship"}`,
	`dudetm_critpath_segment_seconds_total{segment="quorum_wait"}`,
	`dudetm_critpath_segment_seconds_total{segment="notify"}`,
	`dudetm_critpath_segment_share{segment="persist_fence"}`,
	`dudetm_critpath_segment_p99_seconds{segment="persist_fence"}`,
	"dudetm_watchdog_stalls_total",
	"dudetm_recovery_runs_total",
	"dudetm_recovery_replay_seconds",
	"dudetm_recovery_bytes_replayed",
	`dudetm_region_flushed_bytes_total{region="log"}`,
	`dudetm_region_flushed_bytes_total{region="data"}`,
	`dudetm_region_fences_total{region="log"}`,
	"dudetm_repl_peers",
	"dudetm_repl_quorum_state",
	"dudetm_repl_acked_tid",
	"dudetm_repl_frontier_lag",
	"dudetm_repl_degraded_events_total",
	"dudetm_repl_wire_bytes_total",
	`dudetm_repl_ack_latency_seconds{quantile="0.5"}`,
	`dudetm_repl_ack_latency_seconds{quantile="0.99"}`,
	`dudetm_repl_ack_latency_seconds{quantile="0.999"}`,
	"dudesrv_connections_total",
	"dudesrv_requests_total",
	"dudesrv_acked_writes_total",
	"dudesrv_offered_requests_total",
	"dudesrv_served_responses_total",
}

// rateSeries are the monotone counters whose scrape-to-scrape rates the
// live view renders and -check validates. A dudesrv restart between two
// scrapes resets them to zero; rate() clamps the negative delta so the
// view (and the -check gate) never reports a negative or non-finite
// rate across a restart.
var rateSeries = []string{
	"dudesrv_requests_total",
	"dudesrv_acked_writes_total",
	"dudesrv_offered_requests_total",
	"dudesrv_served_responses_total",
	"dudetm_durable_tid",
	`dudetm_region_flushed_bytes_total{region="log"}`,
}

// rate converts two counter samples into a per-second rate. Counter
// resets (server restart between scrapes) show up as a negative delta:
// the pre-reset baseline is meaningless, so the rate is reported as 0
// rather than a negative or wrapped value. A non-positive elapsed time
// also yields 0 instead of Inf/NaN.
func rate(cur, prev map[string]float64, name string, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	delta := cur[name] - prev[name]
	if delta < 0 || math.IsNaN(delta) {
		return 0
	}
	return delta / elapsed.Seconds()
}

// runTop polls a dudesrv metrics endpoint and renders a live view of
// the pipeline: frontier lags, per-stage utilization and backlog, and
// the durability latency quantiles.
func runTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7071", "metrics endpoint (host:port, or a full /metrics URL)")
	n := fs.Int("n", 0, "number of samples to take (0 = until interrupted)")
	interval := fs.Duration("interval", time.Second, "polling interval")
	check := fs.Bool("check", false, "scrape once, validate the required series are present and finite, exit non-zero otherwise")
	fs.Parse(args)

	url := *addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.Contains(url, "/metrics") {
		url = strings.TrimRight(url, "/") + "/metrics"
	}

	if *check {
		m := scrape(url)
		bad := 0
		for _, series := range requiredSeries {
			v, ok := m[series]
			switch {
			case !ok:
				fmt.Fprintf(os.Stderr, "dudectl top: missing series %s\n", series)
				bad++
			case math.IsNaN(v) || math.IsInf(v, 0):
				fmt.Fprintf(os.Stderr, "dudectl top: %s = %v\n", series, v)
				bad++
			}
		}
		// Second scrape: the derived rates must be finite and
		// non-negative even if the server restarted (counters reset to
		// zero) between the two samples.
		start := time.Now()
		time.Sleep(100 * time.Millisecond)
		m2 := scrape(url)
		for _, series := range rateSeries {
			r := rate(m2, m, series, time.Since(start))
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
				fmt.Fprintf(os.Stderr, "dudectl top: rate(%s) = %v\n", series, r)
				bad++
			}
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "dudectl top: %d of %d required series missing, non-finite, or with bad rates\n", bad, len(requiredSeries))
			os.Exit(1)
		}
		fmt.Printf("dudectl top: %s healthy (%d required series present and finite, %d rates sane)\n",
			url, len(requiredSeries), len(rateSeries))
		return
	}

	var prev map[string]float64
	var prevAt time.Time
	for i := 0; *n == 0 || i < *n; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		m := scrape(url)
		now := time.Now()
		renderTop(url, m, prev, now.Sub(prevAt), i+1)
		prev, prevAt = m, now
	}
}

func scrape(url string) map[string]float64 {
	resp, err := http.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET %s: %s", url, resp.Status))
	}
	m, err := obs.ParseProm(resp.Body)
	if err != nil {
		fatal(err)
	}
	return m
}

func renderTop(url string, m, prev map[string]float64, elapsed time.Duration, sample int) {
	clock := m["dudetm_clock_tid"]
	durable := m["dudetm_durable_tid"]
	repro := m["dudetm_reproduced_tid"]
	fmt.Printf("dudetm top — %s (sample %d)\n", url, sample)
	fmt.Printf("  frontier    clock %.0f   durable %.0f (lag %.0f)   reproduced %.0f (lag %.0f)\n",
		clock, durable, clock-durable, repro, durable-repro)
	for _, stage := range []string{"persist", "reproduce"} {
		l := fmt.Sprintf("{stage=%q}", stage)
		fmt.Printf("  %-11s util %5.1f%%   queue %.0f   workers %.0f   groups %.0f   fences %.0f\n",
			stage,
			100*m["dudetm_stage_utilization"+l],
			m["dudetm_stage_queue_depth"+l],
			m["dudetm_stage_workers"+l],
			m["dudetm_stage_groups_total"+l],
			m["dudetm_stage_fences_total"+l])
	}
	fmt.Printf("  durability  p50 %s   p99 %s   p999 %s   (%.0f sampled, commit→durable)\n",
		secs(m[`dudetm_commit_durable_latency_seconds{quantile="0.5"}`]),
		secs(m[`dudetm_commit_durable_latency_seconds{quantile="0.99"}`]),
		secs(m[`dudetm_commit_durable_latency_seconds{quantile="0.999"}`]),
		m["dudetm_trace_sampled_total"])
	fmt.Printf("  reproduce   p99 %s   commit→applied\n",
		secs(m[`dudetm_commit_reproduced_latency_seconds{quantile="0.99"}`]))
	fmt.Printf("  server      conns %.0f   requests %.0f   acked writes %.0f   stalls %.0f\n",
		m["dudesrv_connections_total"], m["dudesrv_requests_total"],
		m["dudesrv_acked_writes_total"], m["dudetm_watchdog_stalls_total"])
	if prev != nil {
		// Rates survive a server restart between samples: rate() clamps
		// the reset's negative delta to 0.
		fmt.Printf("  rates       %.0f req/s   %.0f acks/s   %.0f tid/s   %.0f log B/s\n",
			rate(m, prev, "dudesrv_requests_total", elapsed),
			rate(m, prev, "dudesrv_acked_writes_total", elapsed),
			rate(m, prev, "dudetm_durable_tid", elapsed),
			rate(m, prev, `dudetm_region_flushed_bytes_total{region="log"}`, elapsed))
		// Offered vs served: demand decoded off the wire vs responses
		// written back — the gap is the in-server backlog growing.
		fmt.Printf("  load        %.0f offered/s   %.0f served/s\n",
			rate(m, prev, "dudesrv_offered_requests_total", elapsed),
			rate(m, prev, "dudesrv_served_responses_total", elapsed))
	}
	if m["dudetm_repl_peers"] > 0 {
		state := "HEALTHY"
		if m["dudetm_repl_quorum_state"] == 0 {
			state = "DEGRADED"
		}
		fmt.Printf("  replication %s   peers %.0f/%.0f up   quorum %.0f   acked tid %.0f (lag %.0f)   ack p99 %s   wire %.0f B\n",
			state,
			m["dudetm_repl_peers_connected"], m["dudetm_repl_peers"],
			m["dudetm_repl_quorum"],
			m["dudetm_repl_acked_tid"], m["dudetm_repl_frontier_lag"],
			secs(m[`dudetm_repl_ack_latency_seconds{quantile="0.99"}`]),
			m["dudetm_repl_wire_bytes_total"])
	}
	if m["dudetm_recovery_runs_total"] > 0 {
		fmt.Printf("  recovery    replay %s   %.0f groups   %.0f entries   %.0f bytes\n",
			secs(m["dudetm_recovery_replay_seconds"]),
			m["dudetm_recovery_groups_replayed"],
			m["dudetm_recovery_entries_replayed"],
			m["dudetm_recovery_bytes_replayed"])
	}
}

// secs renders a latency gauge in a human unit.
func secs(v float64) string {
	if v == 0 || math.IsNaN(v) {
		return "-"
	}
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}
