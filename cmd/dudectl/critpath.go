package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"
)

// critpathSegments mirrors obs.CritSegment.String() in pipeline order;
// the rendered table re-ranks them by attributed time.
var critpathSegments = []string{
	"ring_dwell", "seal_wait", "persist_fence", "repl_ship", "quorum_wait", "notify",
}

// runCritpath scrapes a dudesrv metrics endpoint twice and renders
// where the commit→acked window of the interval's sampled transactions
// went, ranked by attributed time. With no traffic in the window it
// falls back to the process-lifetime totals, so the command is useful
// both at live load and post-mortem.
func runCritpath(args []string) {
	fs := flag.NewFlagSet("critpath", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7071", "metrics endpoint (host:port, or a full /metrics URL)")
	interval := fs.Duration("interval", 2*time.Second, "measurement window between the two scrapes")
	fs.Parse(args)

	url := *addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.Contains(url, "/metrics") {
		url = strings.TrimRight(url, "/") + "/metrics"
	}

	first := scrape(url)
	time.Sleep(*interval)
	second := scrape(url)

	window := fmt.Sprintf("%v window", *interval)
	m := diffCritpath(second, first)
	if m["dudetm_critpath_txns_total"] == 0 {
		// Quiet window: report the lifetime aggregate instead.
		m = second
		window = "lifetime totals (no sampled txns in the window)"
	}
	renderCritpath(url, window, m)
}

// diffCritpath subtracts the critpath counters of two scrapes; gauges
// the rendering needs (sampling period, quorum) pass through from the
// later scrape.
func diffCritpath(cur, prev map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range cur {
		if strings.HasPrefix(k, "dudetm_critpath_") {
			d := v - prev[k]
			if d < 0 {
				d = 0 // counter reset across a restart
			}
			out[k] = d
		} else {
			out[k] = v
		}
	}
	return out
}

func renderCritpath(url, window string, m map[string]float64) {
	txns := m["dudetm_critpath_txns_total"]
	fmt.Printf("dudetm critpath — %s (%s)\n", url, window)
	fmt.Printf("  txns %.0f   incomplete %.0f   dropped %.0f   sampling 1-in-%.0f   quorum %.0f\n",
		txns, m["dudetm_critpath_incomplete_total"], m["dudetm_critpath_dropped_total"],
		m["dudetm_trace_sample_every"], m["dudetm_repl_quorum"])
	if txns == 0 {
		fmt.Println("  no decomposed transactions yet (is -trace-sample enabled?)")
		return
	}
	e2e := m["dudetm_critpath_e2e_seconds_sum"]
	fmt.Printf("  commit→acked mean %s over %.0f txns\n", secs(e2e/txns), txns)

	type row struct {
		name  string
		total float64
	}
	rows := make([]row, 0, len(critpathSegments))
	for _, seg := range critpathSegments {
		rows = append(rows, row{seg, m[`dudetm_critpath_segment_seconds_total{segment="`+seg+`"}`]})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].total > rows[j].total })
	fmt.Printf("  %-4s %-14s %12s %8s\n", "rank", "segment", "per txn", "share")
	for i, r := range rows {
		share := 0.0
		if e2e > 0 {
			share = 100 * r.total / e2e
		}
		fmt.Printf("  %-4d %-14s %12s %7.1f%%\n", i+1, r.name, secs(r.total/txns), share)
	}
}
