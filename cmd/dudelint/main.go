// Command dudelint runs the repository's persist-ordering and
// concurrency static-analysis suite (internal/lint) over the module.
//
// Usage:
//
//	dudelint [-json] [-list] [-run a,b] [packages]
//
// Packages may be "./..." (the whole module, the default) or directory
// paths. Output is stable and sorted (file, line, column, analyzer) so
// CI can diff runs. Exit status: 0 clean, 1 unsuppressed diagnostics,
// 2 usage or load error.
//
// -list prints the analyzers with their one-line docs and exits.
// -run restricts the run to a comma-separated subset of analyzers
// (stale-suppression auditing only covers directives whose analyzers
// all ran). -json emits the versioned report documented on
// lint.ReportSchema: {"schema":1,"diagnostics":[...],"suppressed":N,
// "counts":{...}}.
//
// Diagnostics are suppressed, with a mandatory justification, by
//
//	//dudelint:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dudetm/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the versioned JSON report (schema documented on lint.ReportSchema)")
	list := flag.Bool("list", false, "list the analyzers with their one-line docs and exit")
	run := flag.String("run", "", "comma-separated analyzer subset to run (default: all)")
	verbose := flag.Bool("v", false, "print loader warnings and suppression counts")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dudelint [-json] [-list] [-run a,b] [-v] [./... | dirs]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	var analyzers []*lint.Analyzer
	if *run != "" {
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			a := lint.Lookup(name)
			if a == nil {
				fatal(fmt.Errorf("unknown analyzer %q (see dudelint -list)", name))
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var res *lint.Result
	if len(args) == 1 && (args[0] == "./..." || args[0] == "...") {
		res, err = lint.RunModule(root, analyzers)
	} else {
		dirs := make([]string, 0, len(args))
		for _, a := range args {
			d, aerr := filepath.Abs(a)
			if aerr != nil {
				fatal(aerr)
			}
			dirs = append(dirs, d)
		}
		res, err = lint.Run(root, dirs, analyzers)
	}
	if err != nil {
		fatal(err)
	}

	if *verbose {
		for _, w := range res.Warnings {
			fmt.Fprintln(os.Stderr, "dudelint: warning:", w)
		}
		fmt.Fprintf(os.Stderr, "dudelint: %d diagnostic(s), %d suppressed\n",
			len(res.Diags), res.Suppressed)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(lint.NewReport(res, analyzers)); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range res.Diags {
			fmt.Println(d)
		}
	}
	if len(res.Diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dudelint:", err)
	os.Exit(2)
}
