// Command dudelint runs the repository's persist-ordering and
// concurrency static-analysis suite (internal/lint) over the module.
//
// Usage:
//
//	dudelint [-json] [packages]
//
// Packages may be "./..." (the whole module, the default) or directory
// paths. Output is stable and sorted (file, line, column, analyzer) so
// CI can diff runs. Exit status: 0 clean, 1 unsuppressed diagnostics,
// 2 usage or load error.
//
// Diagnostics are suppressed, with a mandatory justification, by
//
//	//dudelint:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dudetm/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	verbose := flag.Bool("v", false, "print loader warnings and suppression counts")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dudelint [-json] [-v] [./... | dirs]")
		flag.PrintDefaults()
	}
	flag.Parse()

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var res *lint.Result
	if len(args) == 1 && (args[0] == "./..." || args[0] == "...") {
		res, err = lint.RunModule(root, nil)
	} else {
		dirs := make([]string, 0, len(args))
		for _, a := range args {
			d, aerr := filepath.Abs(a)
			if aerr != nil {
				fatal(aerr)
			}
			dirs = append(dirs, d)
		}
		res, err = lint.Run(root, dirs, nil)
	}
	if err != nil {
		fatal(err)
	}

	if *verbose {
		for _, w := range res.Warnings {
			fmt.Fprintln(os.Stderr, "dudelint: warning:", w)
		}
		fmt.Fprintf(os.Stderr, "dudelint: %d diagnostic(s), %d suppressed\n",
			len(res.Diags), res.Suppressed)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if res.Diags == nil {
			res.Diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(res.Diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range res.Diags {
			fmt.Println(d)
		}
	}
	if len(res.Diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dudelint:", err)
	os.Exit(2)
}
