module dudetm

go 1.23
