// Netbank: concurrent bank transfers against a dudesrv server, with a
// mid-load power failure.
//
// By default the example is self-contained: it starts an in-process
// server over a fresh pool, runs 16 client connections transferring
// money between 64 accounts as multi-op durable transactions, then
// pulls the plug (simulated power failure), remounts the crash image,
// and checks the two invariants a durable KV service owes its clients:
//
//   - conservation: the recovered balances sum to exactly the initial
//     total (no transfer was ever half-applied), and
//   - durability: every transfer acknowledged as durable before the
//     crash is reflected in the recovered generation counters.
//
// It also prints the group-commit evidence: far fewer persist fences
// than durably acknowledged transactions.
//
// With -addr it instead drives an external dudesrv (no crash drill).
//
// With -replicas N the drill runs replicated: the in-process primary
// ships its persist log to N in-process replicas and acknowledges a
// transfer only after a full quorum of replica acks. The power failure
// then kills the PRIMARY (pool, server, sender — everything), and the
// invariants are checked on a promoted replica's crash image: if the
// quorum gate is honest, every acknowledged transfer is in it.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"dudetm"
	"dudetm/internal/repl"
	"dudetm/internal/server"
	"dudetm/internal/wire"
)

const (
	accounts  = 64
	initial   = 1000
	conns     = 16
	transfers = 100 // per connection
)

func main() {
	external := flag.String("addr", "", "drive an external dudesrv at this address instead of the in-process drill")
	crashImage := flag.String("crash-image", "", "write the pre-recovery crash image to this file (inspect it with dudectl forensics)")
	replicas := flag.Int("replicas", 0, "run the drill replicated: ship the persist log to this many in-process replicas (quorum = all), kill the primary, recover on a promoted replica")
	flag.Parse()
	if *replicas > 0 && *external == "" {
		runReplicated(*replicas, *crashImage)
		return
	}
	if *external != "" {
		c, err := server.Dial(*external)
		if err != nil {
			log.Fatal(err)
		}
		for a := uint64(0); a < accounts; a++ {
			if err := c.Put(a, account(initial, 0)); err != nil {
				log.Fatal(err)
			}
		}
		c.Close()
		run(*external, nil, nil)
		fmt.Printf("netbank: %d connections completed %d transfers each against %s\n", conns, transfers, *external)
		return
	}

	opts := dudetm.Options{DataSize: 16 << 20, Threads: 4, GroupSize: 64, PersistThreads: 2, ReproThreads: 4}
	pool, err := dudetm.Create(opts)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(pool, server.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)

	// Seed every account durably before the clock starts: the
	// conservation check needs the initial total in the image.
	seeder, err := server.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	for a := uint64(0); a < accounts; a++ {
		if err := seeder.Put(a, account(initial, 0)); err != nil {
			log.Fatal(err)
		}
	}
	seeder.Close()

	// Record the newest durably acknowledged generation per account
	// pair; the recovered store must be at least this new.
	var mu sync.Mutex
	ackedGen := make(map[uint64]uint64)
	acked := 0
	var maxTid uint64
	crash := make(chan struct{})
	go func() {
		time.Sleep(150 * time.Millisecond)
		close(crash)
	}()
	run(ln.Addr().String(), crash, func(key, gen, tid uint64) {
		mu.Lock()
		if gen > ackedGen[key] {
			ackedGen[key] = gen
		}
		if tid > maxTid {
			maxTid = tid
		}
		acked++
		mu.Unlock()
	})

	img := srv.Kill() // power failure: unpersisted state is gone
	st := srv.Stats()
	fences := pool.Stats().Device.Fences
	fmt.Printf("crash after %d acked transfers; %d fences for %d durable acks; notifier max batch %d\n",
		acked, fences, st.AckedWrites, st.Notifier.MaxBatch)
	if *crashImage != "" {
		if err := writeFile(*crashImage, img); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("crash image written to %s\n", *crashImage)
	}

	checkRecovered(img, opts, maxTid, ackedGen)
}

// checkRecovered remounts a crash image with recovery and holds it to
// the two client invariants: the online durability audit (the
// recovered frontier covers every acknowledged transaction, with the
// forensic crash report on failure), conservation of the total
// balance, and presence of every durably acknowledged generation.
func checkRecovered(img []byte, opts dudetm.Options, maxTid uint64, ackedGen map[uint64]uint64) {
	pool2, err := dudetm.OpenSnapshot(img, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer pool2.Close()
	if err := pool2.AuditRecovery(maxTid); err != nil {
		log.Fatalf("durability audit: %v", err)
	}
	srv2, err := server.New(pool2, server.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv2.Serve(ln2)
	defer srv2.Shutdown(5 * time.Second)

	c, err := server.Dial(ln2.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	total := uint64(0)
	for a := uint64(0); a < accounts; a++ {
		v, found, err := c.Get(a)
		if err != nil {
			log.Fatal(err)
		}
		if found {
			total += binary.LittleEndian.Uint64(v[:8])
		}
	}
	if total != accounts*initial {
		log.Fatalf("conservation violated: recovered total %d, want %d", total, accounts*initial)
	}
	lost := 0
	for key, gen := range ackedGen {
		v, found, err := c.Get(key)
		if err != nil {
			log.Fatal(err)
		}
		if !found || binary.LittleEndian.Uint64(v[8:16]) < gen {
			lost++
		}
	}
	if lost > 0 {
		log.Fatalf("durability violated: %d acknowledged transfers missing after recovery", lost)
	}
	fmt.Printf("recovered: %d accounts sum to %d; all %d acknowledged generations present\n",
		accounts, total, len(ackedGen))
}

// replicaNode is one in-process replica: its own pool in its own
// simulated NVM, fed only by the primary's replication stream.
type replicaNode struct {
	pool *dudetm.Pool
	rcv  *repl.Receiver
	ln   net.Listener
	done chan struct{}
}

// stopIngest halts replication into the node before the pool is
// touched — promotion and teardown both require it.
func (n *replicaNode) stopIngest() {
	n.ln.Close()
	<-n.done
	n.rcv.Shutdown()
}

// runReplicated is the replicated crash drill: one primary shipping
// its persist log to n replicas at quorum n, the primary killed
// mid-load, recovery and the client invariants checked on the
// promoted replica's crash image.
func runReplicated(n int, crashImage string) {
	opts := dudetm.Options{DataSize: 16 << 20, Threads: 4, GroupSize: 64, PersistThreads: 2, ReproThreads: 4,
		ReplFactor: n, ReplQuorum: n}

	// Replicas are created with the same options as the primary so the
	// pool-format transaction occupies the same tid prefix on both
	// sides; the shipped copy of it arrives as a dedupe.
	nodes := make([]*replicaNode, n)
	addrs := make([]string, n)
	for i := range nodes {
		rp, err := dudetm.Create(opts)
		if err != nil {
			log.Fatal(err)
		}
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		nd := &replicaNode{pool: rp, rcv: repl.NewReceiver(rp), ln: rln, done: make(chan struct{})}
		go func() {
			defer close(nd.done)
			nd.rcv.Serve(nd.ln)
		}()
		nodes[i] = nd
		addrs[i] = rln.Addr().String()
	}

	pri, err := dudetm.Create(opts)
	if err != nil {
		log.Fatal(err)
	}
	snd := repl.NewSender(pri, repl.Config{Peers: addrs, Epoch: pri.Durable(), Compress: true})
	if err := pri.EnableReplication(snd, snd.PeerNames()); err != nil {
		log.Fatal(err)
	}
	snd.Start()
	srv, err := server.New(pri, server.Config{})
	if err != nil {
		log.Fatal(err)
	}
	srv.SetReplication(snd)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	if !snd.WaitConnected(n, 10*time.Second) {
		log.Fatal("replicas never connected")
	}

	seeder, err := server.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	for a := uint64(0); a < accounts; a++ {
		if err := seeder.Put(a, account(initial, 0)); err != nil {
			log.Fatal(err)
		}
	}
	seeder.Close()

	var mu sync.Mutex
	ackedGen := make(map[uint64]uint64)
	acked := 0
	var maxTid uint64
	crash := make(chan struct{})
	go func() {
		time.Sleep(150 * time.Millisecond)
		close(crash)
	}()
	run(ln.Addr().String(), crash, func(key, gen, tid uint64) {
		mu.Lock()
		if gen > ackedGen[key] {
			ackedGen[key] = gen
		}
		if tid > maxTid {
			maxTid = tid
		}
		acked++
		mu.Unlock()
	})

	// Kill the PRIMARY — pool, server and sender all die; its image is
	// deliberately discarded. The replicas are the only survivors.
	// (Sender first: pool teardown joins the Persist coordinator, which
	// a full peer queue could otherwise backpressure-block forever.)
	snd.Close()
	srv.Kill()
	sst := snd.Stats()
	ratio := 1.0
	if sst.WireBytes > 0 {
		ratio = float64(sst.RawBytes) / float64(sst.WireBytes)
	}
	fmt.Printf("primary killed after %d acked transfers (quorum %d/%d); shipped %d groups, %.2fx compression, ack p99 %s\n",
		acked, n, n, sst.GroupsShipped, ratio,
		time.Duration(sst.AckLatency.Quantile(0.99)))

	// Promotion rule: the replica with the largest durable frontier
	// takes over. Power-fail it too — the takeover must work from its
	// raw crash image, not a graceful shutdown.
	for _, nd := range nodes {
		nd.stopIngest()
	}
	promoted := nodes[0]
	for _, nd := range nodes[1:] {
		if nd.pool.Durable() > promoted.pool.Durable() {
			promoted = nd
		}
	}
	fmt.Printf("promoting replica at durable id %d (acked frontier was %d)\n",
		promoted.pool.Durable(), maxTid)
	if promoted.pool.Durable() < maxTid {
		log.Fatalf("promotion: best replica frontier %d < acked %d — quorum gate lied", promoted.pool.Durable(), maxTid)
	}
	for _, nd := range nodes {
		if nd != promoted {
			nd.pool.Close()
		}
	}
	img := promoted.pool.Crash()
	if crashImage != "" {
		if err := writeFile(crashImage, img); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("promoted replica's crash image written to %s\n", crashImage)
	}
	ropts := opts
	ropts.ReplFactor, ropts.ReplQuorum = 0, 0
	checkRecovered(img, ropts, maxTid, ackedGen)
}

// run drives transfer traffic until each connection completes its quota
// or the crash channel fires. Each account's value is [balance u64,
// generation u64]; a transfer is one atomic 2-account transaction, and
// onAck records only transfers the server acknowledged durable, along
// with the acknowledged transaction ID.
func run(addr string, crash <-chan struct{}, onAck func(key, gen, tid uint64)) {
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				return
			}
			defer c.Close()
			// Transfers stay within this connection's slice of the
			// accounts: the read and the write are separate requests, so
			// cross-connection writes to the same account would race.
			// (Group commit still batches across connections — that
			// happens at the durability layer, not the keyspace.)
			owned := accounts / conns
			for i := 0; i < transfers; i++ {
				select {
				case <-crash:
					return
				default:
				}
				src := uint64(w + (i%owned)*conns)
				dst := uint64(w + ((i+1+i/owned)%owned)*conns)
				if src == dst {
					continue
				}
				resp, err := c.Txn(
					wire.Op{Kind: wire.OpGet, Key: src},
					wire.Op{Kind: wire.OpGet, Key: dst},
				)
				if err != nil {
					return
				}
				if !resp.Results[0].Found || !resp.Results[1].Found {
					continue
				}
				sb, sg := split(resp.Results[0].Val)
				db, dg := split(resp.Results[1].Val)
				amt := uint64(1 + i%10)
				if sb < amt {
					continue
				}
				put, err := c.Txn(
					wire.Op{Kind: wire.OpPut, Key: src, Val: account(sb-amt, sg+1)},
					wire.Op{Kind: wire.OpPut, Key: dst, Val: account(db+amt, dg+1)},
				)
				if err != nil {
					return
				}
				if onAck != nil {
					onAck(src, sg+1, put.Tid)
					onAck(dst, dg+1, put.Tid)
				}
			}
		}(w)
	}
	wg.Wait()
}

func account(balance, gen uint64) []byte {
	v := make([]byte, 16)
	binary.LittleEndian.PutUint64(v[:8], balance)
	binary.LittleEndian.PutUint64(v[8:], gen)
	return v
}

func split(v []byte) (balance, gen uint64) {
	return binary.LittleEndian.Uint64(v[:8]), binary.LittleEndian.Uint64(v[8:16])
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
