// KVStore: a durable key-value store built from the library's
// transactional B+-tree, persisted to a pool image file that survives
// process restarts (inspect it with `go run ./cmd/dudectl inspect`).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dudetm"
	"dudetm/internal/memdb"
)

// Store is a durable KV store: the tree's root pointer lives in pool
// root word 0 so a remount can find it.
type Store struct {
	pool *dudetm.Pool
	tree memdb.BPlusTree
}

// create formats a fresh store.
func create(opts dudetm.Options) (*Store, error) {
	pool, err := dudetm.Create(opts)
	if err != nil {
		return nil, err
	}
	s := &Store{pool: pool}
	_, err = pool.Update(0, func(tx *dudetm.Tx) error {
		rootPtr, err := pool.Alloc(tx, 8)
		if err != nil {
			return err
		}
		tx.Store(pool.Root(0), rootPtr)
		s.tree = memdb.BPlusTree{RootPtr: rootPtr, Heap: pool.Heap()}
		return s.tree.Format(tx)
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// open mounts a store from an image file.
func open(path string, opts dudetm.Options) (*Store, error) {
	pool, err := dudetm.OpenImage(path, opts)
	if err != nil {
		return nil, err
	}
	s := &Store{pool: pool}
	err = pool.View(0, func(tx *dudetm.Tx) error {
		s.tree = memdb.BPlusTree{RootPtr: tx.Load(pool.Root(0)), Heap: pool.Heap()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Put stores key -> value durably (waits for the durable ack).
func (s *Store) Put(key, val uint64) error {
	tid, err := s.pool.Update(0, func(tx *dudetm.Tx) error {
		return s.tree.Put(tx, key, val)
	})
	if err != nil {
		return err
	}
	s.pool.WaitDurable(tid)
	return nil
}

// Get looks a key up.
func (s *Store) Get(key uint64) (uint64, bool, error) {
	var v uint64
	var ok bool
	err := s.pool.View(0, func(tx *dudetm.Tx) error {
		v, ok = s.tree.Get(tx, key)
		return nil
	})
	return v, ok, err
}

// Delete removes a key.
func (s *Store) Delete(key uint64) error {
	tid, err := s.pool.Update(0, func(tx *dudetm.Tx) error {
		s.tree.Delete(tx, key)
		return nil
	})
	if err != nil {
		return err
	}
	s.pool.WaitDurable(tid)
	return nil
}

func main() {
	dir, err := os.MkdirTemp("", "dudetm-kv")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "kv.img")
	opts := dudetm.Options{DataSize: 8 << 20, Threads: 1}

	st, err := create(opts)
	if err != nil {
		log.Fatal(err)
	}
	const n = 5000
	for i := uint64(1); i <= n; i++ {
		if err := st.Put(i, i*i); err != nil {
			log.Fatal(err)
		}
	}
	st.Delete(7)
	fmt.Printf("stored %d keys, deleted one\n", n)

	st.pool.Close()
	if err := st.pool.SaveImage(path); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("saved image %s (%d MiB) — try: go run ./cmd/dudectl inspect %s\n",
		filepath.Base(path), fi.Size()>>20, path)

	// Restart: remount the image and verify.
	st2, err := open(path, dudetm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer st2.pool.Close()
	for _, k := range []uint64{1, 100, n} {
		v, ok, err := st2.Get(k)
		if err != nil || !ok || v != k*k {
			log.Fatalf("key %d: %d,%v,%v", k, v, ok, err)
		}
	}
	if _, ok, _ := st2.Get(7); ok {
		log.Fatal("deleted key resurrected")
	}
	fmt.Println("remounted and verified: ok")
}
