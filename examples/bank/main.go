// Bank: concurrent transfers with a mid-pipeline crash drill.
//
// Four workers move money between accounts while the Reproduce step is
// frozen, so the crash happens with a deep persistent redo log:
// everything acknowledged as durable lives only in the log, not in the
// data region. Recovery must replay the log — and conservation of money
// is the observable invariant.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"dudetm"
)

const (
	accounts = 64
	initial  = 1000
	workers  = 4
	transfer = 500 // per worker
)

func main() {
	pool, err := dudetm.Create(dudetm.Options{DataSize: 8 << 20, Threads: workers})
	if err != nil {
		log.Fatal(err)
	}

	tid, err := pool.Update(0, func(tx *dudetm.Tx) error {
		for i := 0; i < accounts; i++ {
			tx.Store(pool.Root(i), initial)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	pool.WaitDurable(tid)

	// Freeze Reproduce: transactions keep becoming durable (their logs
	// are persisted) but the data region stops advancing.
	pool.PauseReproduce()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var last uint64
	aborted := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < transfer; i++ {
				src := pool.Root(rng.Intn(accounts))
				dst := pool.Root(rng.Intn(accounts))
				if src == dst {
					continue
				}
				tid, err := pool.Update(w, func(tx *dudetm.Tx) error {
					b := tx.Load(src)
					if b == 0 {
						tx.Abort() // insufficient funds
					}
					tx.Store(src, b-1)
					tx.Store(dst, tx.Load(dst)+1)
					return nil
				})
				mu.Lock()
				if err != nil {
					aborted++
				} else if tid > last {
					last = tid
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	pool.WaitDurable(last)
	fmt.Printf("ran %d workers; last durable tid %d; %d user aborts\n", workers, last, aborted)
	fmt.Printf("durable=%d reproduced=%d (log is %d transactions deep)\n",
		pool.Durable(), pool.Reproduced(), pool.Durable()-pool.Reproduced())

	// Crash with the pipeline frozen mid-flight.
	pool.PausePersist()
	img := pool.Snapshot()
	pool.ResumePersist()
	pool.ResumeReproduce()
	pool.Close()
	fmt.Println("crash!")

	pool2, err := dudetm.OpenSnapshot(img, dudetm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer pool2.Close()
	if pool2.Durable() < last {
		log.Fatalf("recovery lost durable transactions: %d < %d", pool2.Durable(), last)
	}
	if err := pool2.View(0, func(tx *dudetm.Tx) error {
		var sum uint64
		for i := 0; i < accounts; i++ {
			sum += tx.Load(pool2.Root(i))
		}
		fmt.Printf("recovered to tid %d; total money = %d (expected %d)\n",
			pool2.Durable(), sum, accounts*initial)
		if sum != accounts*initial {
			return fmt.Errorf("money not conserved")
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok")
}
