// TPC-C: the paper's headline OLTP workload (New Order transactions)
// running on the public API with the NVM timing model enabled, printing
// throughput and pipeline statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"dudetm"
	"dudetm/internal/memdb"
	"dudetm/internal/workload/tpcc"
)

func main() {
	threads := flag.Int("threads", 2, "Perform threads")
	orders := flag.Int("orders", 20000, "New Order transactions to run")
	sync_ := flag.Bool("sync", false, "use DUDETM-Sync (synchronous persist)")
	flag.Parse()

	pool, err := dudetm.Create(dudetm.Options{
		DataSize: 256 << 20,
		Threads:  *threads,
		Sync:     *sync_,
		Timing:   true, // 1 GB/s NVM, 1000-cycle persist latency
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	cfg := tpcc.Config{
		Warehouses: 4, Districts: 10, Customers: 120, Items: 1024,
		MaxOrders: 1 << 17, Storage: tpcc.BTreeStorage,
	}
	fmt.Printf("loading TPC-C (%d warehouses, %d items, B+-tree tables)...\n",
		cfg.Warehouses, cfg.Items)
	db, err := tpcc.Setup(cfg, pool.Heap(), func(fn func(memdb.Ctx) error) error {
		_, err := pool.Update(0, func(tx *dudetm.Tx) error { return fn(tx) })
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	perThread := *orders / *threads
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < perThread; i++ {
				in := db.GenInput(rng, w%cfg.Warehouses)
				if _, err := pool.Update(w, func(tx *dudetm.Tx) error {
					return db.NewOrder(tx, in)
				}); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := pool.Stats()
	total := perThread * *threads
	fmt.Printf("ran %d New Order transactions in %v: %.1f KTPS\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds()/1e3)
	fmt.Printf("writes/tx: %.1f   NVM bytes written: %d MiB   aborts: %d\n",
		float64(st.Writes)/float64(st.Committed), st.Device.BytesFlushed>>20, st.TM.Aborts)
	fmt.Printf("pipeline: clock=%d durable=%d reproduced=%d\n",
		st.Clock, st.Durable, st.Reproduced)
}
