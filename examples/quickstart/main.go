// Quickstart: durable transactions on a simulated persistent memory
// pool — write, wait for durability, crash, recover.
package main

import (
	"fmt"
	"log"

	"dudetm"
)

func main() {
	pool, err := dudetm.Create(dudetm.Options{DataSize: 8 << 20, Threads: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Two bank accounts live in the pool's root words.
	alice, bob := pool.Root(0), pool.Root(1)
	tid, err := pool.Update(0, func(tx *dudetm.Tx) error {
		tx.Store(alice, 100)
		tx.Store(bob, 100)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	pool.WaitDurable(tid)
	fmt.Println("initialized: alice=100 bob=100 (durable)")

	// Transfer $30 atomically. dtmAbort-style rollback is available via
	// tx.Abort for business rules (e.g. insufficient funds).
	tid, err = pool.Update(0, func(tx *dudetm.Tx) error {
		a := tx.Load(alice)
		if a < 30 {
			tx.Abort()
		}
		tx.Store(alice, a-30)
		tx.Store(bob, tx.Load(bob)+30)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	pool.WaitDurable(tid)
	fmt.Println("transferred 30: durable at tid", tid)

	// Simulate a power failure: capture exactly what the NVM holds,
	// then remount from that image. Recovery replays the durable redo
	// logs; acknowledged transactions always survive.
	pool.Close()
	img := pool.Snapshot()
	fmt.Printf("crash! remounting a %d MiB pool image...\n", len(img)>>20)

	pool2, err := dudetm.OpenSnapshot(img, dudetm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer pool2.Close()
	if err := pool2.View(0, func(tx *dudetm.Tx) error {
		a, b := tx.Load(pool2.Root(0)), tx.Load(pool2.Root(1))
		fmt.Printf("recovered: alice=%d bob=%d (sum %d)\n", a, b, a+b)
		if a != 70 || b != 130 {
			return fmt.Errorf("unexpected balances %d/%d", a, b)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok")
}
